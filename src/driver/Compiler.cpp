//===- driver/Compiler.cpp ----------------------------------------------------------==//

#include "driver/Compiler.h"

#include "analysis/PacketLifetime.h"
#include "analysis/StateRace.h"
#include "cg/Lowering.h"
#include "ir/ASTLower.h"
#include "map/Placement.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "pktopt/Pac.h"
#include "pktopt/Phr.h"
#include "pktopt/Soar.h"

#include <algorithm>
#include <cassert>
#include <iostream>

using namespace sl;
using namespace sl::driver;

const char *sl::driver::optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::Base:
    return "BASE";
  case OptLevel::O1:
    return "+O1";
  case OptLevel::O2:
    return "+O2";
  case OptLevel::Pac:
    return "+PAC";
  case OptLevel::Soar:
    return "+SOAR";
  case OptLevel::Phr:
    return "+PHR";
  case OptLevel::Swc:
    return "+SWC";
  }
  return "?";
}

const char *sl::driver::analyzeModeName(AnalyzeMode M) {
  switch (M) {
  case AnalyzeMode::Off:
    return "off";
  case AnalyzeMode::Warn:
    return "warn";
  case AnalyzeMode::Error:
    return "error";
  }
  return "?";
}

namespace {

bool atLeast(OptLevel L, OptLevel Min) {
  return static_cast<uint8_t>(L) >= static_cast<uint8_t>(Min);
}

/// Instrumentation shim around one pipeline phase. Null observer => both
/// hooks are no-ops, so the uninstrumented path costs two pointer tests.
class PhaseScope {
public:
  PhaseScope(obs::CompileObserver *Obs, const char *Name,
             const ir::Module *M)
      : Obs(Obs), M(M) {
    if (Obs)
      Token = Obs->beginPass(Name, M);
  }
  /// Records the fixed-point round count a scalar-pipeline phase ran.
  void setRounds(unsigned R) { Rounds = R; }
  /// For phases that create the module: measure it on the way out.
  void setModule(const ir::Module *NewM) { M = NewM; }
  void end() {
    if (Obs && !Ended)
      Obs->endPass(Token, M, Rounds);
    Ended = true;
  }
  ~PhaseScope() { end(); }

private:
  obs::CompileObserver *Obs;
  const ir::Module *M;
  size_t Token = 0;
  unsigned Rounds = 0;
  bool Ended = false;
};

/// --print-ir-after support: dump to stderr after the named phase ("*"
/// matches all). Debug aid only; output format is ir::printModule.
void maybeDumpIr(const CompileOptions &Opts, const char *Phase,
                 const ir::Module *M) {
  if (Opts.PrintIrAfter.empty() || !M)
    return;
  if (Opts.PrintIrAfter != "*" && Opts.PrintIrAfter != Phase)
    return;
  std::cerr << ";; IR after " << Phase << "\n" << ir::printModule(*M);
}

/// One complete build attempt at a given size-estimate factor. Returns
/// null if an aggregate missed the code store (caller retries with a
/// bigger estimate).
std::unique_ptr<CompiledApp> buildOnce(const std::string &Source,
                                       const profile::Trace &ProfTrace,
                                       const std::vector<TableInit> &Tables,
                                       const CompileOptions &Opts,
                                       double SizeFactor, DiagEngine &Diags,
                                       bool &Oversize) {
  Oversize = false;
  auto App = std::make_unique<CompiledApp>();
  App->Opts = Opts;
  App->Tables = Tables;

  obs::CompileObserver *Obs = Opts.Observer;
  obs::RemarkEmitter *Rem = Obs ? &Obs->Remarks : nullptr;

  {
    PhaseScope P(Obs, "parse", nullptr);
    App->Unit = baker::parseAndAnalyze(Source, Diags);
  }
  if (!App->Unit)
    return nullptr;
  {
    PhaseScope P(Obs, "ir-lower", nullptr);
    App->IR = ir::lowerProgram(*App->Unit, Diags);
    if (App->IR)
      P.setModule(App->IR.get());
  }
  if (Diags.hasErrors())
    return nullptr;
  ir::Module &M = *App->IR;
  maybeDumpIr(Opts, "ir-lower", &M);

  // Tx-consumed metadata fields are externally visible (PHR must keep
  // their SRAM backing).
  for (const std::string &Name : Opts.TxMetaFields) {
    const baker::BitField *F = App->metaField(Name);
    if (!F) {
      Diags.error(SourceLoc(), "unknown Tx metadata field '%s'",
                  Name.c_str());
      return nullptr;
    }
    M.ExternMetaRanges.push_back({F->BitOff, F->Bits});
  }

  // Functional profiler (Sec. 4.1).
  {
    PhaseScope P(Obs, "profile", &M);
    profile::Profiler Prof(M);
    for (const TableInit &T : Tables)
      Prof.interp().writeGlobal(T.Global, T.Index, T.Value);
    App->Prof = Prof.run(ProfTrace);
  }

  // Aggregate formation (Sec. 5.1). With a valid telemetry overlay the
  // decisions are priced from measurement; the oversize-retry growth
  // (SizeFactor / the configured estimate) scales the measured expansion
  // too, so code-store misses still force splits in feedback mode.
  {
    PhaseScope P(Obs, "aggregate-formation", &M);
    map::MapParams MP = Opts.Map;
    MP.MeInstrsPerIrInstr = SizeFactor;
    if (Opts.Measured.valid()) {
      map::MeasuredCostModel CM(App->Prof, MP, Opts.Measured,
                                SizeFactor / Opts.Map.MeInstrsPerIrInstr);
      App->Plan = map::formAggregates(M, App->Prof, MP, CM);
      App->MeInstrsPerIrInstrUsed = CM.meInstrsPerIrInstr();
    } else {
      App->Plan = map::formAggregates(M, App->Prof, MP);
      App->MeInstrsPerIrInstrUsed = SizeFactor;
    }
    map::applyPlan(M, App->Plan);
  }
  maybeDumpIr(Opts, "aggregate-formation", &M);

  // Placement + channel-implementation selection: order aggregates onto
  // physical ME slots, lower adjacent single-producer/single-consumer
  // channels to next-neighbor rings, re-price the winners. Runs after
  // applyPlan so only real crossings remain.
  {
    PhaseScope P(Obs, "placement", &M);
    map::MapParams MP = Opts.Map;
    MP.MeInstrsPerIrInstr = SizeFactor;
    if (Opts.Measured.valid()) {
      map::MeasuredCostModel CM(App->Prof, MP, Opts.Measured,
                                SizeFactor / Opts.Map.MeInstrsPerIrInstr);
      map::placeAggregates(M, App->Prof, MP, CM, App->Plan);
    } else {
      map::StaticCostModel CM(App->Prof, MP);
      map::placeAggregates(M, App->Prof, MP, CM, App->Plan);
    }
    if (Rem) {
      auto AggName = [&](unsigned I) -> std::string {
        if (I >= App->Plan.Aggregates.size())
          return "?";
        const map::Aggregate &A = App->Plan.Aggregates[I];
        return A.Funcs.empty() ? "?" : A.Funcs.front()->name();
      };
      for (const map::ChannelDecision &D : App->Plan.Channels) {
        bool NN = D.Kind == map::ChannelKind::NextNeighbor;
        Rem->remark("placement",
                    NN ? obs::RemarkKind::Fired : obs::RemarkKind::Missed,
                    D.Reason)
            .arg("channel", D.Name)
            .arg("producer", AggName(D.Producer))
            .arg("consumer", AggName(D.Consumer))
            .arg("freq", D.Freq);
      }
    }
  }

  // The ME has no call hardware: all remaining calls are flattened.
  {
    PhaseScope P(Obs, "inline", &M);
    opt::inlineCalls(M);
  }
  maybeDumpIr(Opts, "inline", &M);

  // Safety analyses (packet lifetime + shared-state races). They run on
  // the post-inline but pre-optimization IR on purpose: the scalar ladder
  // may delete a defective-but-dead access, and legality must reflect
  // what the programmer wrote, not what the optimizer kept. The race
  // classification is what SWC consults for cache legality below.
  if (Opts.Analyze != AnalyzeMode::Off) {
    {
      PhaseScope P(Obs, "pkt-lifetime", &M);
      analysis::checkPacketLifetime(M, App->Findings);
    }
    {
      PhaseScope P(Obs, "state-race", &M);
      App->Races = analysis::checkStateRace(M, App->Plan, App->Findings);
    }
    bool AnyError = false;
    for (const analysis::Finding &F : App->Findings) {
      if (Rem)
        Rem->remark("analysis", obs::RemarkKind::Note, F.Reason, F.Function,
                    F.Loc)
            .arg("analysis", F.Analysis)
            .arg("severity", analysis::severityName(F.Sev))
            .arg("detail", F.Detail);
      if (F.Sev != analysis::Severity::Error)
        continue;
      AnyError = true;
      if (Opts.Analyze == AnalyzeMode::Error)
        Diags.error(F.Loc, "%s [%s]", F.Detail.c_str(), F.Reason.c_str());
      else
        Diags.warning(F.Loc, "%s [%s]", F.Detail.c_str(), F.Reason.c_str());
    }
    if (Obs) {
      obs::AnalysisReport AR;
      AR.Present = true;
      AR.Mode = analyzeModeName(Opts.Analyze);
      for (const analysis::Finding &F : App->Findings)
        AR.Findings.push_back({F.Analysis, F.Reason,
                               analysis::severityName(F.Sev), F.Function,
                               F.Loc.isValid() ? F.Loc.Line : 0,
                               F.Loc.isValid() ? F.Loc.Col : 0, F.Detail});
      for (const auto &G : M.globals()) {
        const analysis::GlobalFacts *GF = App->Races.facts(G->name());
        if (!GF)
          continue;
        AR.Globals.push_back({G->name(),
                              analysis::globalScopeName(GF->Scope),
                              GF->DataPlaneStores,
                              App->Races.cacheSafe(G->name()),
                              GF->UnlockedRmw, GF->BenignCounter,
                              GF->LockInconsistent, GF->ConsistentLock});
      }
      Obs->setAnalysisReport(std::move(AR));
    }
    if (AnyError && Opts.Analyze == AnalyzeMode::Error)
      return nullptr;
  }

  // Scalar ladder.
  if (atLeast(Opts.Level, OptLevel::O1)) {
    PhaseScope P(Obs, "o1", &M);
    P.setRounds(opt::runO1(M, Rem));
    P.end();
    maybeDumpIr(Opts, "o1", &M);
  }
  if (atLeast(Opts.Level, OptLevel::O2)) {
    PhaseScope P(Obs, "o2", &M);
    P.setRounds(opt::runO2(M, Rem));
    P.end();
    maybeDumpIr(Opts, "o2", &M);
  }

  // PHR part 1: metadata localization, then clean up the new locals.
  if (atLeast(Opts.Level, OptLevel::Phr)) {
    {
      PhaseScope P(Obs, "phr", &M);
      pktopt::localizeMetadata(M, Rem);
    }
    maybeDumpIr(Opts, "phr", &M);
    {
      PhaseScope P(Obs, "phr-cleanup", &M);
      P.setRounds(opt::runO1(M, Rem));
    }
    maybeDumpIr(Opts, "phr-cleanup", &M);
  }
  if (atLeast(Opts.Level, OptLevel::Pac)) {
    PhaseScope P(Obs, "pac", &M);
    pktopt::runPac(M, Rem);
    P.end();
    maybeDumpIr(Opts, "pac", &M);
  }
  if (atLeast(Opts.Level, OptLevel::Soar)) {
    PhaseScope P(Obs, "soar", &M);
    pktopt::runSoar(M, Rem);
    P.end();
    maybeDumpIr(Opts, "soar", &M);
  }
  if (atLeast(Opts.Level, OptLevel::Swc)) {
    PhaseScope P(Obs, "swc", &M);
    pktopt::runSwc(M, App->Prof, Opts.Swc, Rem,
                   App->Races.Valid ? &App->Races : nullptr);
    P.end();
    maybeDumpIr(Opts, "swc", &M);
  }

  {
    PhaseScope P(Obs, "verify", &M);
    std::vector<std::string> Problems = ir::verifyModule(M);
    for (const std::string &Pr : Problems)
      Diags.error(SourceLoc(), "internal: IR verification failed: %s",
                  Pr.c_str());
  }
  if (Diags.hasErrors())
    return nullptr;

  {
    PhaseScope P(Obs, "memory-map", &M);
    App->Map = rts::buildMemoryMap(M);
  }

  cg::CgConfig Cfg;
  Cfg.InlineExpansion = atLeast(Opts.Level, OptLevel::O2);
  Cfg.UseSoar = atLeast(Opts.Level, OptLevel::Soar);
  Cfg.Phr = atLeast(Opts.Level, OptLevel::Phr);
  Cfg.Swc = atLeast(Opts.Level, OptLevel::Swc);
  Cfg.StackOpt = Opts.StackOpt;
  Cfg.Rem = Rem;
  for (const map::ChannelDecision &D : App->Plan.Channels)
    if (D.Kind == map::ChannelKind::NextNeighbor)
      Cfg.NNChannels.insert(D.ChanId);

  PhaseScope CodegenPhase(Obs, "codegen", &M);
  for (unsigned AggIdx = 0; AggIdx != App->Plan.Aggregates.size();
       ++AggIdx) {
    const map::Aggregate &Agg = App->Plan.Aggregates[AggIdx];
    // Roots: one per external input channel.
    std::vector<cg::RootInput> Roots;
    std::vector<unsigned> Rings;
    for (unsigned Chan : Agg.InputChans) {
      cg::RootInput R;
      if (Chan == map::RxChanId) {
        R.Root = M.EntryPpf;
        R.Ring = rts::RxRing;
      } else {
        const ir::Channel *C = M.findChannel(Chan);
        assert(C && C->Dest && "wired channel");
        R.Root = C->Dest;
        R.Ring = rts::ringOfChannel(Chan);
        R.NN = Cfg.NNChannels.count(Chan) != 0;
      }
      Roots.push_back(R);
      Rings.push_back(R.Ring);
    }
    if (Roots.empty())
      continue; // Fully merged into another aggregate.

    std::string Name = Roots.front().Root->name();
    cg::LoweredAggregate Low =
        cg::lowerAggregate(M, App->Map, Cfg, Roots, Name);
    AggregateBinary Bin;
    Bin.RegAlloc = cg::allocateRegisters(Low);
    Bin.Stack = cg::layoutStack(Low, App->Map, Cfg.StackOpt);
    Bin.Code = cg::flatten(Low.Code);
    Bin.Wcet = cg::analyzeWcet(Bin.Code, ixp::ChipParams());
    Bin.Rings = Rings;
    Bin.Copies = Agg.Copies;
    Bin.OnXScale = Agg.OnXScale;
    Bin.Name = Name;
    Bin.PlanIndex = AggIdx;

    if (!Agg.OnXScale && Bin.Code.CodeSlots > Opts.Map.CodeStoreInstrs) {
      Oversize = true;
      return nullptr;
    }
    App->Images.push_back(std::move(Bin));
  }
  return App;
}

} // namespace

std::unique_ptr<CompiledApp> sl::driver::compile(
    const std::string &Source, const profile::Trace &ProfTrace,
    const std::vector<TableInit> &Tables, const CompileOptions &Opts,
    DiagEngine &Diags) {
  double SizeFactor = Opts.Map.MeInstrsPerIrInstr;
  obs::CompileObserver *Obs = Opts.Observer;
  for (unsigned Iter = 0; Iter != 6; ++Iter) {
    if (Obs)
      Obs->beginAttempt(Iter);
    bool Oversize = false;
    auto App =
        buildOnce(Source, ProfTrace, Tables, Opts, SizeFactor, Diags,
                  Oversize);
    if (App) {
      App->PlanIterations = Iter + 1;
      if (Obs)
        Obs->finalize();
      return App;
    }
    if (!Oversize) {
      if (Obs)
        Obs->finalize();
      return nullptr; // Real error; diagnostics are set.
    }
    // Feedback: the estimate was too small — re-plan with a larger one so
    // aggregation splits (pipelines) sooner.
    if (Obs)
      Obs->Remarks.remark("driver", obs::RemarkKind::Note,
                          "code-store-oversize-retry")
          .arg("attempt", Iter)
          .arg("sizeFactor", SizeFactor);
    SizeFactor *= 1.8;
    Diags.clear();
  }
  Diags.error(SourceLoc(), "could not fit aggregates into the ME code "
                           "store after repeated re-planning");
  if (Obs)
    Obs->finalize();
  return nullptr;
}

std::unique_ptr<ixp::Simulator>
sl::driver::makeSimulator(const CompiledApp &App, ixp::ChipParams Chip) {
  Chip.ProgrammableMEs = App.Opts.Map.NumMEs;
  Chip.CodeStoreSlots = App.Opts.Map.CodeStoreInstrs;
  auto Sim = std::make_unique<ixp::Simulator>(Chip, App.Map);
  Sim->initGlobals(*App.IR);
  for (const TableInit &T : App.Tables) {
    ir::Global *G = App.IR->findGlobal(T.Global);
    assert(G && "unknown table global");
    Sim->writeGlobal(G, T.Index, T.Value);
  }
  // Load ME images in physical-slot order so core index == planned slot
  // (the plan keeps MEs first and XScale last; unplaced images keep
  // their original order). Next-neighbor ring validation in the
  // simulator depends on this correspondence.
  std::vector<const AggregateBinary *> Order;
  Order.reserve(App.Images.size());
  for (const AggregateBinary &Bin : App.Images)
    Order.push_back(&Bin);
  auto SlotOf = [&](const AggregateBinary *B) -> unsigned {
    if (B->PlanIndex >= App.Plan.Aggregates.size())
      return ~0u;
    return App.Plan.Aggregates[B->PlanIndex].Slot;
  };
  std::stable_sort(Order.begin(), Order.end(),
                   [&](const AggregateBinary *A, const AggregateBinary *B) {
                     if (A->OnXScale != B->OnXScale)
                       return A->OnXScale < B->OnXScale;
                     return SlotOf(A) < SlotOf(B);
                   });
  for (const AggregateBinary *Bin : Order) {
    bool Loaded =
        Sim->loadAggregate(Bin->Code, Bin->Rings, Bin->Copies, Bin->OnXScale);
    assert(Loaded && "compiler produced an unloadable mapping");
    (void)Loaded;
  }

  // Apply the placement pass's channel decisions: implementation, labels
  // and endpoint slots per ring.
  for (const map::ChannelDecision &D : App.Plan.Channels) {
    auto AggLabel = [&](unsigned I) -> std::string {
      if (I >= App.Plan.Aggregates.size() ||
          App.Plan.Aggregates[I].Funcs.empty())
        return {};
      return App.Plan.Aggregates[I].Funcs.front()->name();
    };
    auto AggSlot = [&](unsigned I) -> int {
      if (I >= App.Plan.Aggregates.size())
        return -1;
      unsigned S = App.Plan.Aggregates[I].Slot;
      return S == ~0u ? -1 : static_cast<int>(S);
    };
    ixp::RingConfig RC;
    RC.Impl = D.Kind == map::ChannelKind::NextNeighbor
                  ? ixp::RingImpl::NextNeighbor
                  : ixp::RingImpl::Scratch;
    RC.Capacity = D.Capacity;
    RC.Name = D.Name;
    RC.Producer = AggLabel(D.Producer);
    RC.Consumer = AggLabel(D.Consumer);
    RC.ProducerME = AggSlot(D.Producer);
    RC.ConsumerME = AggSlot(D.Consumer);
    bool Ok = Sim->configureRing(rts::ringOfChannel(D.ChanId), RC);
    assert(Ok && "placement produced an invalid ring configuration");
    (void)Ok;
  }
  return Sim;
}
