//===- obs/OptReport.h - instrumented pass pipeline + opt-report -----------------==//
//
// CompileObserver is the sink the driver threads through the whole
// pipeline (CompileOptions::Observer). It records, per pass:
//
//   * wall time (steady clock, microseconds, relative to the observer's
//     construction) and, for fixed-point drivers, the round count;
//   * before/after IR deltas — instructions, basic blocks, functions,
//     packet/metadata accesses and global accesses — so "what did this
//     pass actually do to the IR" is a diff, not a guess;
//   * the oversize-retry attempt and feedback round the pass ran under.
//
// It owns the RemarkEmitter the PAC/SOAR/PHR/SWC passes report into, and
// exports everything as one machine-readable JSON opt-report
// (writeJson; schema in docs/observability.md) plus a Chrome-trace view
// of compile time (exportChromeTrace; same trace-event format the PR-1
// simulator tracer emits, loadable in chrome://tracing / Perfetto).
//
// Attaching an observer is observation-only: it changes no compiler
// decision, and with no observer attached every hook is a null-pointer
// test.
//
//===----------------------------------------------------------------------===//

#ifndef SL_OBS_OPTREPORT_H
#define SL_OBS_OPTREPORT_H

#include "obs/Remark.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sl::ir {
class Function;
class Module;
} // namespace sl::ir

namespace sl::support {
class JsonWriter;
}

namespace sl::obs {

/// A size snapshot of the IR; PassRecord stores one from before and one
/// from after each pass so the report carries true deltas.
struct IrStats {
  uint64_t Funcs = 0;
  uint64_t Blocks = 0;
  uint64_t Instrs = 0;
  /// Packet-memory traffic sites: Pkt/Meta loads+stores and the wide
  /// accesses PAC forms (one wide access counts once).
  uint64_t PktAccesses = 0;
  /// Global (application-table) access sites: GLoad/GStore.
  uint64_t GlobalAccesses = 0;
};

IrStats measureIr(const ir::Module &M);
IrStats measureIr(const ir::Function &F);

/// One instrumented pass (or pipeline phase) execution.
struct PassRecord {
  std::string Name;   ///< "pac", "soar", "phr", "swc", "o1", "codegen"...
  unsigned Attempt = 0;       ///< Oversize-retry build attempt (0-based).
  int Round = -1;             ///< Feedback round; -1 outside feedback.
  uint64_t StartUs = 0;       ///< Since observer construction.
  uint64_t WallUs = 0;
  unsigned FixpointRounds = 0; ///< Rounds a fixed-point driver ran; 0 n/a.
  IrStats Before, After;
};

/// One safety-analysis finding, as exported to the opt-report. The driver
/// converts analysis::Finding into this obs-local mirror so the obs
/// library stays independent of src/analysis.
struct AnalysisFinding {
  std::string Analysis; ///< "pkt-lifetime" | "state-race".
  std::string Reason;   ///< Kebab-case reason code.
  std::string Severity; ///< "error" | "note".
  std::string Function;
  unsigned Line = 0, Col = 0; ///< 0 when no source location.
  std::string Detail;
};

/// One global's sharing classification, as exported to the opt-report.
struct AnalysisGlobalRecord {
  std::string Name;
  std::string Scope; ///< "unused" | "xscale-only" | "per-me" | "cross-me".
  bool DataPlaneStores = false;
  bool CacheSafe = false;
  bool UnlockedRmw = false;
  bool BenignCounter = false;
  bool LockInconsistent = false;
  int ConsistentLock = -1;
};

/// The opt-report's "analysis" section (absent until the driver runs the
/// safety analyses and calls setAnalysisReport).
struct AnalysisReport {
  bool Present = false;
  std::string Mode; ///< "off" | "warn" | "error".
  std::vector<AnalysisFinding> Findings;
  std::vector<AnalysisGlobalRecord> Globals;
};

/// Per-round summary recorded by compileWithFeedback.
struct FeedbackRoundRecord {
  unsigned Round = 0;
  double PredictedThroughput = 0.0;
  double MeasuredPktPerKCycle = 0.0;
  bool FixedPoint = false;
  std::string PlanSignature;
};

class CompileObserver {
public:
  CompileObserver();

  RemarkEmitter Remarks;

  /// Begins a pass; returns a token for endPass. \p M (nullable) is
  /// measured for the "before" snapshot.
  size_t beginPass(std::string Name, const ir::Module *M = nullptr);
  /// Ends the pass begun with \p Token; measures \p M for "after".
  void endPass(size_t Token, const ir::Module *M = nullptr,
               unsigned FixpointRounds = 0);

  /// New oversize-retry attempt inside driver::compile (stamps subsequent
  /// passes and remarks).
  void beginAttempt(unsigned Attempt);
  /// Feedback round context (stamps subsequent passes and remarks; -1
  /// clears it).
  void setRound(int Round);

  void noteFeedbackRound(FeedbackRoundRecord R);

  /// Installs the safety-analysis section (last call wins — the oversize
  /// retry loop re-runs the analyses per attempt).
  void setAnalysisReport(AnalysisReport R) { Analysis = std::move(R); }
  const AnalysisReport &analysisReport() const { return Analysis; }

  /// Captures total wall time (construction -> now). Called by the driver
  /// when a compile finishes; callable repeatedly (last call wins), so a
  /// multi-compile session extends the total.
  void finalize();

  /// Optional context echoed into the report header.
  void setContext(std::string App, std::string Level);

  uint64_t nowUs() const;
  uint64_t totalUs() const { return TotalUs; }
  unsigned attempts() const { return Attempts; }
  const std::vector<PassRecord> &passes() const { return Passes; }
  const std::vector<FeedbackRoundRecord> &feedbackRounds() const {
    return Rounds;
  }

  /// Sum of recorded pass wall times (child passes only; attempts add,
  /// nested records would double-count — the driver records a flat
  /// sequence, so they do not nest).
  uint64_t sumPassUs() const;

  /// The machine-readable opt-report.
  void writeJson(support::JsonWriter &W) const;
  void writeJson(std::ostream &OS) const;

  /// Chrome-trace view of the compile: one "X" event per pass, one
  /// process per attempt, one thread row per feedback round.
  void exportChromeTrace(std::ostream &OS) const;

private:
  uint64_t EpochNs = 0; ///< steady_clock at construction.
  uint64_t TotalUs = 0;
  unsigned Attempts = 0;
  std::vector<PassRecord> Passes;
  std::vector<FeedbackRoundRecord> Rounds;
  AnalysisReport Analysis;
  std::string CtxApp, CtxLevel;
};

} // namespace sl::obs

#endif // SL_OBS_OPTREPORT_H
