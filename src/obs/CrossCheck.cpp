//===- obs/CrossCheck.cpp ------------------------------------------------------==//

#include "obs/CrossCheck.h"

#include "obs/Remark.h"

#include <cstdio>

using namespace sl;
using namespace sl::obs;

void sl::obs::summarizeRemarks(const RemarkEmitter &Rem, LevelObs &L) {
  L.PacFired = Rem.count("pac", RemarkKind::Fired);
  L.PacSavedAccesses = static_cast<uint64_t>(
      Rem.sumArg("pac", RemarkKind::Fired, "savedAccesses"));
  L.SwcCached = Rem.count("swc", RemarkKind::Fired);
}

namespace {

/// Measured rates are per-packet averages over a finite run; allow a
/// small absolute slack before calling a direction violated.
constexpr double Slack = 0.05;

CrossCheckFinding directional(const char *Check, const LevelObs &Lo,
                              const LevelObs &Hi, uint64_t FiredCount,
                              double Before, double After) {
  CrossCheckFinding F;
  F.Check = Check;
  F.Levels = Lo.Level + " -> " + Hi.Level;
  char Buf[160];
  if (FiredCount > 0) {
    // The pass claims it removed accesses: the measured rate must drop.
    F.Ok = After < Before - Slack;
    std::snprintf(Buf, sizeof(Buf),
                  "%llu fired; measured %.2f -> %.2f accesses/pkt (%s)",
                  static_cast<unsigned long long>(FiredCount), Before,
                  After, F.Ok ? "drops as claimed" : "DID NOT DROP");
  } else {
    // Nothing fired: the rate must not rise (later ladder levels only
    // ever add optimizations).
    F.Ok = After <= Before + Slack;
    std::snprintf(Buf, sizeof(Buf),
                  "nothing fired; measured %.2f -> %.2f accesses/pkt (%s)",
                  Before, After, F.Ok ? "no increase" : "ROSE");
  }
  F.Detail = Buf;
  return F;
}

} // namespace

CrossCheckResult sl::obs::crossCheckTable1(const LevelObs &O1,
                                           const LevelObs &Pac,
                                           const LevelObs &Phr,
                                           const LevelObs &Swc) {
  CrossCheckResult R;
  R.Findings.push_back(directional("pac-combining", O1, Pac, Pac.PacFired,
                                   O1.PktAccessesPerPkt,
                                   Pac.PktAccessesPerPkt));
  R.Findings.push_back(directional("swc-caching", Phr, Swc, Swc.SwcCached,
                                   Phr.AppSramPerPkt, Swc.AppSramPerPkt));
  return R;
}
