//===- obs/Remark.h - structured optimization remarks --------------------------==//
//
// The compiler-side half of the observability story: every PAC / SOAR /
// PHR / SWC decision site can report what it did ("fired") or why it
// declined ("missed") as a structured remark — pass, kind, a
// machine-readable reason code, the enclosing function, the source
// location, and a small bag of typed arguments. Remarks are collected by
// a RemarkEmitter that the driver threads through the pipeline when an
// opt-report was requested; every pass takes the emitter as a nullable
// pointer and pays nothing when it is null.
//
// Remarks are observation-only by contract: a pass must make exactly the
// same decisions whether or not an emitter is attached (OptReportTest
// asserts the produced images are bit-identical either way).
//
// Reason codes are stable kebab-case strings, documented in
// docs/observability.md; tools should match on them, not on the rendered
// message.
//
//===----------------------------------------------------------------------===//

#ifndef SL_OBS_REMARK_H
#define SL_OBS_REMARK_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sl::obs {

enum class RemarkKind : uint8_t {
  Fired,  ///< The optimization applied at this site.
  Missed, ///< A candidate site was examined and declined.
  Note,   ///< Pipeline-level observation (e.g. fixed-point cap hit).
};

const char *remarkKindName(RemarkKind K);

/// One key/value remark argument. Numeric arguments keep their value so
/// consumers (the cross-check harness, the JSON writer) never re-parse
/// rendered text.
struct RemarkArg {
  std::string Key;
  std::string Str;     ///< Valid when !IsNum.
  double Num = 0.0;    ///< Valid when IsNum.
  bool IsNum = false;
  bool IsInt = false;  ///< Render Num without a decimal point.
};

/// One structured remark.
struct Remark {
  std::string Pass;     ///< "pac" | "soar" | "phr" | "swc" | "pipeline".
  RemarkKind Kind = RemarkKind::Note;
  std::string Reason;   ///< Machine-readable reason code (kebab-case).
  std::string Function; ///< Enclosing IR function; empty if module-level.
  SourceLoc Loc;        ///< Baker source position; invalid if synthetic.
  unsigned Attempt = 0; ///< Oversize-retry build attempt (0-based).
  int Round = -1;       ///< Feedback round; -1 outside compileWithFeedback.
  std::vector<RemarkArg> Args;

  Remark &arg(std::string Key, std::string Value);
  Remark &arg(std::string Key, const char *Value);
  Remark &arg(std::string Key, uint64_t Value);
  Remark &arg(std::string Key, int64_t Value);
  Remark &arg(std::string Key, unsigned Value) {
    return arg(std::move(Key), uint64_t(Value));
  }
  Remark &arg(std::string Key, int Value) {
    return arg(std::move(Key), int64_t(Value));
  }
  Remark &arg(std::string Key, double Value);

  /// Numeric argument by key (0 when absent or non-numeric).
  double argNum(std::string_view Key) const;

  /// Human-readable one-liner: "pac fired combined-loads f:12:3 members=3".
  std::string message() const;
};

/// Collects remarks. The driver owns one per compilation (inside the
/// CompileObserver) and sets the attempt/round context; passes append
/// through remark().
class RemarkEmitter {
public:
  /// Starts a remark; returns a reference valid until the next call, so
  /// call sites can chain .arg(...) onto it.
  Remark &remark(std::string Pass, RemarkKind K, std::string Reason,
                 std::string Function = {}, SourceLoc Loc = {});

  const std::vector<Remark> &remarks() const { return Remarks; }
  void clear() { Remarks.clear(); }

  /// Number of remarks from \p Pass of kind \p K.
  unsigned count(std::string_view Pass, RemarkKind K) const;

  /// Sum of numeric argument \p Key over remarks from \p Pass of kind
  /// \p K (skips remarks without it).
  double sumArg(std::string_view Pass, RemarkKind K,
                std::string_view Key) const;

  /// Context stamped onto every subsequent remark.
  void setAttempt(unsigned A) { Attempt = A; }
  void setRound(int R) { Round = R; }
  unsigned attempt() const { return Attempt; }
  int round() const { return Round; }

private:
  std::vector<Remark> Remarks;
  unsigned Attempt = 0;
  int Round = -1;
};

} // namespace sl::obs

#endif // SL_OBS_REMARK_H
