//===- obs/OptReport.cpp - pass instrumentation + opt-report writers --------------==//

#include "obs/OptReport.h"

#include "ir/Module.h"
#include "support/Json.h"

#include <cassert>
#include <chrono>
#include <ostream>

using namespace sl;
using namespace sl::obs;
using support::JsonWriter;

namespace {

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool isPktAccess(ir::Op O) {
  switch (O) {
  case ir::Op::PktLoad:
  case ir::Op::PktStore:
  case ir::Op::MetaLoad:
  case ir::Op::MetaStore:
  case ir::Op::PktLoadWide:
  case ir::Op::PktStoreWide:
    return true;
  default:
    return false;
  }
}

void writeIrStats(JsonWriter &W, const IrStats &S) {
  W.beginObject();
  W.field("funcs", S.Funcs);
  W.field("blocks", S.Blocks);
  W.field("instrs", S.Instrs);
  W.field("pktAccesses", S.PktAccesses);
  W.field("globalAccesses", S.GlobalAccesses);
  W.endObject();
}

} // namespace

IrStats sl::obs::measureIr(const ir::Function &F) {
  IrStats S;
  S.Funcs = 1;
  S.Blocks = F.numBlocks();
  for (const auto &BB : F.blocks()) {
    S.Instrs += BB->size();
    for (const auto &I : BB->instrs()) {
      S.PktAccesses += isPktAccess(I->op());
      S.GlobalAccesses +=
          I->op() == ir::Op::GLoad || I->op() == ir::Op::GStore;
    }
  }
  return S;
}

IrStats sl::obs::measureIr(const ir::Module &M) {
  IrStats S;
  for (const auto &F : M.functions()) {
    IrStats FS = measureIr(*F);
    S.Funcs += FS.Funcs;
    S.Blocks += FS.Blocks;
    S.Instrs += FS.Instrs;
    S.PktAccesses += FS.PktAccesses;
    S.GlobalAccesses += FS.GlobalAccesses;
  }
  return S;
}

CompileObserver::CompileObserver() : EpochNs(steadyNowNs()) {}

uint64_t CompileObserver::nowUs() const {
  return (steadyNowNs() - EpochNs) / 1000;
}

size_t CompileObserver::beginPass(std::string Name, const ir::Module *M) {
  PassRecord R;
  R.Name = std::move(Name);
  R.Attempt = Remarks.attempt();
  R.Round = Remarks.round();
  if (M)
    R.Before = measureIr(*M);
  R.StartUs = nowUs();
  Passes.push_back(std::move(R));
  return Passes.size() - 1;
}

void CompileObserver::endPass(size_t Token, const ir::Module *M,
                              unsigned FixpointRounds) {
  assert(Token < Passes.size() && "endPass without beginPass");
  PassRecord &R = Passes[Token];
  R.WallUs = nowUs() - R.StartUs;
  R.FixpointRounds = FixpointRounds;
  if (M)
    R.After = measureIr(*M);
}

void CompileObserver::beginAttempt(unsigned Attempt) {
  Remarks.setAttempt(Attempt);
  if (Attempt + 1 > Attempts)
    Attempts = Attempt + 1;
}

void CompileObserver::setRound(int Round) { Remarks.setRound(Round); }

void CompileObserver::noteFeedbackRound(FeedbackRoundRecord R) {
  Rounds.push_back(std::move(R));
}

void CompileObserver::finalize() { TotalUs = nowUs(); }

void CompileObserver::setContext(std::string App, std::string Level) {
  CtxApp = std::move(App);
  CtxLevel = std::move(Level);
}

uint64_t CompileObserver::sumPassUs() const {
  uint64_t Sum = 0;
  for (const PassRecord &P : Passes)
    Sum += P.WallUs;
  return Sum;
}

void CompileObserver::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.field("optReportVersion", uint64_t(1));
  if (!CtxApp.empty())
    W.field("app", CtxApp);
  if (!CtxLevel.empty())
    W.field("level", CtxLevel);
  W.field("totalUs", TotalUs);
  W.field("sumPassUs", sumPassUs());
  W.field("attempts", uint64_t(Attempts));

  W.key("passes");
  W.beginArray();
  for (const PassRecord &P : Passes) {
    W.beginObject();
    W.field("name", P.Name);
    W.field("attempt", uint64_t(P.Attempt));
    W.field("round", int64_t(P.Round));
    W.field("startUs", P.StartUs);
    W.field("wallUs", P.WallUs);
    if (P.FixpointRounds)
      W.field("fixpointRounds", uint64_t(P.FixpointRounds));
    W.key("before");
    writeIrStats(W, P.Before);
    W.key("after");
    writeIrStats(W, P.After);
    W.endObject();
  }
  W.endArray();

  // Per-pass remark tallies, then the remarks themselves.
  W.key("remarkCounts");
  W.beginObject();
  {
    std::vector<std::string> Seen;
    for (const Remark &R : Remarks.remarks()) {
      bool New = true;
      for (const std::string &S : Seen)
        New &= (S != R.Pass);
      if (!New)
        continue;
      Seen.push_back(R.Pass);
      W.key(R.Pass);
      W.beginObject();
      W.field("fired", uint64_t(Remarks.count(R.Pass, RemarkKind::Fired)));
      W.field("missed",
              uint64_t(Remarks.count(R.Pass, RemarkKind::Missed)));
      W.field("note", uint64_t(Remarks.count(R.Pass, RemarkKind::Note)));
      W.endObject();
    }
  }
  W.endObject();

  W.key("remarks");
  W.beginArray();
  for (const Remark &R : Remarks.remarks()) {
    W.beginObject();
    W.field("pass", R.Pass);
    W.field("kind", remarkKindName(R.Kind));
    W.field("reason", R.Reason);
    if (!R.Function.empty())
      W.field("function", R.Function);
    if (R.Loc.isValid()) {
      W.field("line", uint64_t(R.Loc.Line));
      W.field("col", uint64_t(R.Loc.Col));
    }
    W.field("attempt", uint64_t(R.Attempt));
    W.field("round", int64_t(R.Round));
    if (!R.Args.empty()) {
      W.key("args");
      W.beginObject();
      for (const RemarkArg &A : R.Args) {
        if (!A.IsNum)
          W.field(A.Key, A.Str);
        else if (A.IsInt)
          W.field(A.Key, int64_t(A.Num));
        else
          W.field(A.Key, A.Num);
      }
      W.endObject();
    }
    W.field("message", R.message());
    W.endObject();
  }
  W.endArray();

  if (Analysis.Present) {
    W.key("analysis");
    W.beginObject();
    W.field("mode", Analysis.Mode);
    W.key("findings");
    W.beginArray();
    for (const AnalysisFinding &F : Analysis.Findings) {
      W.beginObject();
      W.field("analysis", F.Analysis);
      W.field("reason", F.Reason);
      W.field("severity", F.Severity);
      if (!F.Function.empty())
        W.field("function", F.Function);
      if (F.Line) {
        W.field("line", uint64_t(F.Line));
        W.field("col", uint64_t(F.Col));
      }
      W.field("detail", F.Detail);
      W.endObject();
    }
    W.endArray();
    W.key("globals");
    W.beginArray();
    for (const AnalysisGlobalRecord &G : Analysis.Globals) {
      W.beginObject();
      W.field("name", G.Name);
      W.field("scope", G.Scope);
      W.field("dataPlaneStores", G.DataPlaneStores);
      W.field("cacheSafe", G.CacheSafe);
      W.field("unlockedRmw", G.UnlockedRmw);
      W.field("benignCounter", G.BenignCounter);
      W.field("lockInconsistent", G.LockInconsistent);
      W.field("consistentLock", int64_t(G.ConsistentLock));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }

  if (!Rounds.empty()) {
    W.key("feedbackRounds");
    W.beginArray();
    for (const FeedbackRoundRecord &R : Rounds) {
      W.beginObject();
      W.field("round", uint64_t(R.Round));
      W.field("predictedThroughput", R.PredictedThroughput);
      W.field("measuredPktPerKCycle", R.MeasuredPktPerKCycle);
      W.field("fixedPoint", R.FixedPoint);
      W.field("planSignature", R.PlanSignature);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
}

void CompileObserver::writeJson(std::ostream &OS) const {
  JsonWriter W(OS);
  writeJson(W);
  OS << '\n';
}

void CompileObserver::exportChromeTrace(std::ostream &OS) const {
  // Same trace-event JSON the simulator tracer emits (PR 1), so both
  // timelines open in the same viewers. One process per build attempt,
  // one thread row per feedback round; ts/dur are microseconds of
  // compile wall time, which is what the viewers natively assume.
  JsonWriter W(OS, /*Pretty=*/false);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (unsigned A = 0; A != (Attempts ? Attempts : 1u); ++A) {
    W.beginObject();
    W.field("name", "process_name");
    W.field("ph", "M");
    W.field("pid", uint64_t(A));
    W.key("args");
    W.beginObject();
    W.field("name", ("compile attempt " + std::to_string(A)).c_str());
    W.endObject();
    W.endObject();
  }
  for (const PassRecord &P : Passes) {
    W.beginObject();
    W.field("name", P.Name);
    W.field("cat", "pass");
    W.field("ph", "X");
    W.field("ts", P.StartUs);
    W.field("dur", P.WallUs);
    W.field("pid", uint64_t(P.Attempt));
    W.field("tid", uint64_t(P.Round < 0 ? 0 : P.Round));
    W.key("args");
    W.beginObject();
    W.field("instrsBefore", P.Before.Instrs);
    W.field("instrsAfter", P.After.Instrs);
    W.field("pktAccessesBefore", P.Before.PktAccesses);
    W.field("pktAccessesAfter", P.After.PktAccesses);
    if (P.FixpointRounds)
      W.field("fixpointRounds", uint64_t(P.FixpointRounds));
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.key("otherData");
  W.beginObject();
  W.field("timestampUnit", "us");
  W.field("totalUs", TotalUs);
  W.endObject();
  W.endObject();
  OS << '\n';
}
