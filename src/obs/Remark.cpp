//===- obs/Remark.cpp ----------------------------------------------------------==//

#include "obs/Remark.h"

#include <cstdio>

using namespace sl;
using namespace sl::obs;

const char *sl::obs::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Fired:
    return "fired";
  case RemarkKind::Missed:
    return "missed";
  case RemarkKind::Note:
    return "note";
  }
  return "?";
}

Remark &Remark::arg(std::string Key, std::string Value) {
  Args.push_back({std::move(Key), std::move(Value), 0.0, false, false});
  return *this;
}

Remark &Remark::arg(std::string Key, const char *Value) {
  return arg(std::move(Key), std::string(Value));
}

Remark &Remark::arg(std::string Key, uint64_t Value) {
  Args.push_back({std::move(Key), {}, double(Value), true, true});
  return *this;
}

Remark &Remark::arg(std::string Key, int64_t Value) {
  Args.push_back({std::move(Key), {}, double(Value), true, true});
  return *this;
}

Remark &Remark::arg(std::string Key, double Value) {
  Args.push_back({std::move(Key), {}, Value, true, false});
  return *this;
}

double Remark::argNum(std::string_view Key) const {
  for (const RemarkArg &A : Args)
    if (A.IsNum && A.Key == Key)
      return A.Num;
  return 0.0;
}

std::string Remark::message() const {
  std::string S = Pass;
  S += ' ';
  S += remarkKindName(Kind);
  S += ' ';
  S += Reason;
  if (!Function.empty()) {
    S += " @";
    S += Function;
  }
  if (Loc.isValid()) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), ":%u:%u", Loc.Line, Loc.Col);
    S += Buf;
  }
  for (const RemarkArg &A : Args) {
    S += ' ';
    S += A.Key;
    S += '=';
    if (!A.IsNum) {
      S += A.Str;
    } else {
      char Buf[40];
      if (A.IsInt)
        std::snprintf(Buf, sizeof(Buf), "%lld",
                      static_cast<long long>(A.Num));
      else
        std::snprintf(Buf, sizeof(Buf), "%g", A.Num);
      S += Buf;
    }
  }
  return S;
}

Remark &RemarkEmitter::remark(std::string Pass, RemarkKind K,
                              std::string Reason, std::string Function,
                              SourceLoc Loc) {
  Remark R;
  R.Pass = std::move(Pass);
  R.Kind = K;
  R.Reason = std::move(Reason);
  R.Function = std::move(Function);
  R.Loc = Loc;
  R.Attempt = Attempt;
  R.Round = Round;
  Remarks.push_back(std::move(R));
  return Remarks.back();
}

unsigned RemarkEmitter::count(std::string_view Pass, RemarkKind K) const {
  unsigned N = 0;
  for (const Remark &R : Remarks)
    N += (R.Pass == Pass && R.Kind == K);
  return N;
}

double RemarkEmitter::sumArg(std::string_view Pass, RemarkKind K,
                             std::string_view Key) const {
  double Sum = 0.0;
  for (const Remark &R : Remarks)
    if (R.Pass == Pass && R.Kind == K)
      Sum += R.argNum(Key);
  return Sum;
}
