//===- obs/CrossCheck.h - static remarks vs measured Table-1 deltas ---------------==//
//
// Turns Table 1 into a self-validating artifact: the compiler's own
// remark stream makes static claims ("PAC combined N accesses", "SWC
// cached table T"), and the simulator measures per-packet memory-access
// rates at each ladder level. This harness reconciles the two:
//
//   * if PAC reported combining at a level, the measured packet-memory
//     accesses per packet (Scratch+SRAM+DRAM packet traffic) must drop
//     against the previous ladder level — and must never rise either way;
//   * if SWC reported caching tables, the measured application-SRAM
//     accesses per packet must drop against the previous level — and
//     must never rise either way.
//
// The checks are deliberately directional rather than exact: the ladder
// levels differ by more than one pass (+PAC also enables -O2 inlining),
// and eliminated static sites execute with data-dependent frequency, so
// an exact count equation would be fiction. A fired optimization whose
// measured effect is zero (or negative) is exactly the inconsistency
// Table 1 must not ship with.
//
// Used by tests/OptReportTest.cpp and by bench/table1_mem_accesses,
// which embeds the findings in its --stats-json output and fails its
// exit code when a check does not hold.
//
//===----------------------------------------------------------------------===//

#ifndef SL_OBS_CROSSCHECK_H
#define SL_OBS_CROSSCHECK_H

#include <string>
#include <vector>

namespace sl::obs {

class RemarkEmitter;

/// What one (app, ladder-level) cell contributes: the static remark
/// summary from its compile and the measured per-packet rates from its
/// simulation.
struct LevelObs {
  std::string Level; ///< Display name, e.g. "+ PAC".

  // Measured (simulator, per injected packet).
  double PktAccessesPerPkt = 0.0; ///< Packet traffic: ring+meta+data.
  double AppSramPerPkt = 0.0;     ///< Application tables (+cache+stack).

  // Static (compiler remarks from this level's build).
  uint64_t PacFired = 0;         ///< Wide accesses PAC formed.
  uint64_t PacSavedAccesses = 0; ///< Narrow accesses PAC eliminated.
  uint64_t SwcCached = 0;        ///< Tables SWC marked cached.
};

/// Fills the static-side fields of \p L from a compile's remark stream.
void summarizeRemarks(const RemarkEmitter &Rem, LevelObs &L);

struct CrossCheckFinding {
  std::string Check;  ///< "pac-combining" | "swc-caching".
  std::string Levels; ///< "+ -O1 -> + PAC".
  bool Ok = false;
  std::string Detail; ///< Human-readable explanation either way.
};

struct CrossCheckResult {
  std::vector<CrossCheckFinding> Findings;
  bool ok() const {
    for (const CrossCheckFinding &F : Findings)
      if (!F.Ok)
        return false;
    return true;
  }
};

/// Reconciles adjacent ladder levels: PAC's claim between \p O1 and
/// \p Pac, SWC's claim between \p Phr and \p Swc.
CrossCheckResult crossCheckTable1(const LevelObs &O1, const LevelObs &Pac,
                                  const LevelObs &Phr, const LevelObs &Swc);

} // namespace sl::obs

#endif // SL_OBS_CROSSCHECK_H
